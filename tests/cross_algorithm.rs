//! Cross-crate integration: every algorithm variant, one pipeline.

use simrank::algo::{dsr, matrixform, mtx, naive, oip, psum, CostModel, SimRankOptions};
use simrank::datasets;
use simrank::graph::gen;

/// All conventional-SimRank implementations agree on every simulated
/// dataset family.
#[test]
fn conventional_variants_agree_on_all_dataset_families() {
    let graphs = [
        datasets::berkstan_like(120, 1).graph,
        datasets::patent_like(120, 2).graph,
        datasets::dblp_like(datasets::DblpSnapshot::D02, 60, 3).graph,
        datasets::syn(100, 8, 4).graph,
    ];
    let opts = SimRankOptions::default()
        .with_damping(0.6)
        .with_iterations(6);
    for (i, g) in graphs.iter().enumerate() {
        let reference = naive::naive_simrank(g, &opts);
        let via_psum = psum::psum_simrank(g, &opts);
        let via_oip = oip::oip_simrank(g, &opts);
        assert!(
            reference.max_abs_diff(&via_psum) < 1e-10,
            "psum disagrees on family {i}"
        );
        assert!(
            reference.max_abs_diff(&via_oip) < 1e-10,
            "oip disagrees on family {i}"
        );
    }
}

/// The ablation knobs change cost, never scores.
#[test]
fn ablations_cost_only() {
    let g = datasets::berkstan_like(150, 7).graph;
    let base = SimRankOptions::default().with_iterations(5);
    let reference = oip::oip_simrank(&g, &base);
    let (_, r_base) = oip::oip_simrank_with_report(&g, &base);
    let scratch_only = base
        .with_cost_model(CostModel::ScratchOnly)
        .with_outer_sharing(false);
    let (s, r_off) = oip::oip_simrank_with_report(&g, &scratch_only);
    assert!(reference.max_abs_diff(&s) < 1e-10);
    assert!(
        r_base.adds < r_off.adds,
        "sharing must reduce additions: {} vs {}",
        r_base.adds,
        r_off.adds
    );
}

/// Differential SimRank through the OIP engine equals the dense Eq. 15
/// reference on a structured graph.
#[test]
fn dsr_pipeline_matches_dense_reference() {
    let g = datasets::patent_like(100, 5).graph;
    for k in [1u32, 4, 8] {
        let opts = SimRankOptions::default()
            .with_damping(0.7)
            .with_iterations(k);
        let fast = dsr::oip_dsr_simrank(&g, &opts);
        let reference = matrixform::dsr_matrix_reference(&g, 0.7, k);
        assert!(fast.max_abs_diff(&reference) < 1e-10, "K = {k}");
    }
}

/// Full-rank mtx-SR equals the converged matrix-form solution.
#[test]
fn mtx_pipeline_matches_matrix_form() {
    let g = gen::gnm(30, 110, 11);
    let opts = SimRankOptions::default()
        .with_damping(0.6)
        .with_iterations(30);
    let via_svd = mtx::mtx_simrank(&g, &opts, None);
    let reference = matrixform::matrix_form_simrank(&g, 0.6, 30);
    for a in 0..30 {
        for b in 0..30 {
            assert!((via_svd.get(a, b) - reference.get(a, b)).abs() < 1e-7);
        }
    }
}

/// The two SimRank formulations (iterative Eq. 2 vs matrix Eq. 3) have the
/// documented relationship: equal at every entry where neither argument's
/// self-similarity feedback matters at k=1, and ordered (matrix ≤
/// iterative) everywhere.
#[test]
fn formulation_relationship_pinned() {
    let g = simrank::graph::fixtures::paper_fig1a();
    let iterative = matrixform::iterative_form_reference(&g, 0.6, 20);
    let matrix = matrixform::matrix_form_simrank(&g, 0.6, 20);
    for a in 0..9 {
        for b in 0..9 {
            assert!(
                matrix.get(a, b) <= iterative.get(a, b) + 1e-12,
                "matrix form must lower-bound the iterative form at ({a},{b})"
            );
        }
    }
    // Known exact diagonal values.
    assert!((iterative.get(5, 5) - 1.0).abs() < 1e-12);
    assert!((matrix.get(5, 5) - 0.4).abs() < 1e-12);
}

/// Monte-Carlo estimates correlate strongly with exact scores.
#[test]
fn monte_carlo_tracks_exact() {
    use simrank::algo::montecarlo::Fingerprints;
    let g = simrank::graph::fixtures::paper_fig1a();
    let opts = SimRankOptions::default()
        .with_damping(0.6)
        .with_iterations(15);
    let exact = naive::naive_simrank(&g, &opts);
    let fp = Fingerprints::sample(&g, 15, 8_000, 13);
    let mut exact_v = Vec::new();
    let mut mc_v = Vec::new();
    for a in 0..9u32 {
        for b in (a + 1)..9u32 {
            exact_v.push(exact.get(a as usize, b as usize));
            mc_v.push(fp.estimate(0.6, a, b));
        }
    }
    let tau = simrank::eval::kendall_tau(&exact_v, &mc_v);
    assert!(tau > 0.75, "MC/exact rank correlation too weak: {tau}");
}

/// P-Rank interpolates between forward and backward SimRank.
#[test]
fn prank_interpolation() {
    use simrank::algo::prank::{prank, PRankOptions};
    let g = datasets::dblp_like(datasets::DblpSnapshot::D02, 120, 17).graph;
    let base = SimRankOptions::default().with_iterations(5);
    let sr = oip::oip_simrank(&g, &base);
    let pr_in = prank(&g, &PRankOptions { base, lambda: 1.0 });
    assert!(sr.max_abs_diff(&pr_in) < 1e-12);
    // On a symmetric co-authorship graph, in-links equal out-links, so any
    // λ gives the same scores.
    let pr_half = prank(&g, &PRankOptions { base, lambda: 0.5 });
    assert!(sr.max_abs_diff(&pr_half) < 1e-10);
}
