//! Facade-level smoke test: `simrank::prelude::*` alone must expose every
//! algorithm entry point named in the `simrank_core` doc table — naive,
//! psum, oip, oip_dsr, mtx, montecarlo, prank — and each must run on the
//! paper's Fig. 1a fixture producing scores in `[0, 1]`.
//!
//! Everything below is reached through the glob import only; a missing
//! re-export is a compile failure, which is the point of the test.

use simrank::prelude::*;

fn fig1a() -> DiGraph {
    simrank::graph::fixtures::paper_fig1a()
}

/// Asserts the Jeh–Widom (Eq. 2) contract: unit diagonal and scores in
/// `[0, 1]`. (Symmetry `s(a,b) == s(b,a)` is enforced structurally by
/// `SimMatrix`'s packed storage, so asserting it here would be vacuous.)
fn assert_eq2_contract(name: &str, s: &SimMatrix) {
    let n = s.order();
    assert_eq!(n, 9, "{name}: Fig. 1a has 9 vertices");
    for a in 0..n {
        assert!(
            (s.get(a, a) - 1.0).abs() < 1e-12,
            "{name}: s({a},{a}) = {} != 1",
            s.get(a, a)
        );
        for b in 0..n {
            let v = s.get(a, b);
            assert!(
                (-1e-12..=1.0 + 1e-12).contains(&v),
                "{name}: s({a},{b}) = {v} outside [0,1]"
            );
        }
    }
}

#[test]
fn naive_entry_point() {
    let s = naive_simrank(&fig1a(), &SimRankOptions::default().with_iterations(8));
    assert_eq2_contract("naive_simrank", &s);
}

#[test]
fn psum_entry_point() {
    let s = psum_simrank(&fig1a(), &SimRankOptions::default().with_iterations(8));
    assert_eq2_contract("psum_simrank", &s);
}

#[test]
fn oip_entry_point() {
    let s = oip_simrank(&fig1a(), &SimRankOptions::default().with_iterations(8));
    assert_eq2_contract("oip_simrank", &s);
}

/// Asserts the *matrix form* (Eq. 3 / Eq. 15) contract followed by the
/// differential and SVD-based variants: scores in `[0, 1]`, diagonals
/// `(1−C)`-damped into `[1−C, 1]` rather than pinned to 1. (Symmetry
/// is structural, as in [`assert_eq2_contract`].)
fn assert_matrix_form_contract(name: &str, s: &SimMatrix, c: f64) {
    let n = s.order();
    assert_eq!(n, 9, "{name}: Fig. 1a has 9 vertices");
    for a in 0..n {
        let diag = s.get(a, a);
        assert!(
            (1.0 - c - 1e-9..=1.0 + 1e-9).contains(&diag),
            "{name}: s({a},{a}) = {diag} outside [1-C, 1]"
        );
        for b in 0..n {
            let v = s.get(a, b);
            assert!(
                (-1e-9..=1.0 + 1e-9).contains(&v),
                "{name}: s({a},{b}) = {v} outside [0,1]"
            );
        }
    }
}

#[test]
fn oip_dsr_entry_point() {
    let s = oip_dsr_simrank(&fig1a(), &SimRankOptions::default().with_iterations(8));
    assert_matrix_form_contract("oip_dsr_simrank", &s, 0.6);
}

#[test]
fn mtx_entry_point() {
    let c = 0.6;
    let s = mtx_simrank(
        &fig1a(),
        &SimRankOptions::default()
            .with_damping(c)
            .with_iterations(20),
        None,
    );
    assert_matrix_form_contract("mtx_simrank", &s, c);
}

#[test]
fn montecarlo_entry_points() {
    let g = fig1a();
    let opts = SimRankOptions::default();
    for a in 0..9u32 {
        assert_eq!(mc_simrank_pair(&g, a, a, &opts, 8, 50, 7), 1.0);
    }
    let fp = Fingerprints::sample(&g, 8, 400, 7);
    for a in 0..9u32 {
        assert_eq!(fp.estimate(0.6, a, a), 1.0, "fingerprint s({a},{a})");
        for b in 0..9u32 {
            let v = fp.estimate(0.6, a, b);
            assert!((0.0..=1.0).contains(&v), "montecarlo: s({a},{b}) = {v}");
        }
    }
}

#[test]
fn prank_entry_point() {
    let s = prank(
        &fig1a(),
        &PRankOptions {
            base: SimRankOptions::default().with_iterations(8),
            lambda: 0.5,
        },
    );
    assert_eq2_contract("prank", &s);
}

#[test]
fn prelude_supports_the_full_query_pipeline() {
    // One end-to-end pass using only prelude names: build → score → rank.
    let mut b = GraphBuilder::new(4);
    b.add_edge(0, 2);
    b.add_edge(1, 2);
    b.add_edge(0, 3);
    b.add_edge(1, 3);
    let g: DiGraph = b.build();
    let s = oip_simrank(&g, &SimRankOptions::default().with_iterations(10));
    let query: NodeId = 2;
    let ids = top_k_ids(&s, query, 2);
    assert_eq!(ids[0], 3, "vertices 2 and 3 share both in-neighbors");
    let ranked = top_k(&s, query, 3);
    assert_eq!(ranked.len(), 3);
    assert!(top_k_overlap(&ids, &top_k_ids(&s, query, 2)) == 1.0);
    let tau = kendall_tau(&[1.0, 2.0, 3.0], &[1.0, 2.0, 3.0]);
    assert!((tau - 1.0).abs() < 1e-12);
    let ndcg = ndcg_at(&ids, |v: NodeId| s.get(query as usize, v as usize), 2);
    assert!(
        (ndcg - 1.0).abs() < 1e-12,
        "top-k order is ideal by construction: {ndcg}"
    );
}
