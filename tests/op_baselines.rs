//! Op-count regression gate.
//!
//! The triangular-sweep refactor halved the dense outer-accumulation
//! arithmetic (every unordered pair is computed once; the mirror pass is a
//! pure copy and counts nothing). This test pins the exact
//! [`simrank::algo::Report::adds`] of every algorithm on fixed fixture
//! graphs against the committed `baselines/op_counts.txt`, so a silent
//! re-introduction of redundant arithmetic — or an accidental drop that
//! would indicate skipped work — fails CI by name.
//!
//! To regenerate after an *intended* cost-model change:
//!
//! ```text
//! SIMRANK_UPDATE_BASELINES=1 cargo test --test op_baselines
//! ```

use simrank::algo::montecarlo::Fingerprints;
use simrank::algo::prank::{prank_with_report, PRankOptions};
use simrank::algo::{dsr, dynamic, naive, oip, psum, SimRankOptions};
use simrank::graph::{fixtures, gen, DiGraph, EdgeDelta};
use std::collections::BTreeMap;
use std::num::NonZeroUsize;

const BASELINE_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/baselines/op_counts.txt");

/// The fixture graphs the gate runs on: the paper's Fig. 1a example, a
/// uniform random graph, and a copying-model web graph (the in-set overlap
/// OIP exploits).
fn fixture_graphs() -> Vec<(&'static str, DiGraph)> {
    vec![
        ("fig1a", fixtures::paper_fig1a()),
        ("gnm40", gen::gnm(40, 160, 7)),
        (
            "copy120",
            gen::copying_web_graph(gen::CopyingParams::berkstan_like(120), 7),
        ),
    ]
}

/// The fixed edit script the `dynamic/*` cases replay: a deterministic
/// insert/remove mix derived from the graph's own edge list, so the warm
/// resweep's stopping decision — and therefore its op count — is pinned.
fn dynamic_script(g: &DiGraph) -> Vec<EdgeDelta> {
    let n = g.node_count() as u32;
    let mut deltas = Vec::new();
    for (i, (u, v)) in g.edges().enumerate() {
        if i % 7 == 3 {
            deltas.push(EdgeDelta::Remove(u, v));
            deltas.push(EdgeDelta::Insert((u + 1) % n, (v + 2) % n));
        }
    }
    deltas
}

/// Measures every `<algorithm>/<graph>` case. Counts are thread-invariant
/// by the executor's shard-merge contract; `threads = 1` keeps the gate
/// cheap on CI.
fn measured_cases() -> Vec<(String, u64)> {
    let opts = SimRankOptions::default()
        .with_damping(0.6)
        .with_iterations(5)
        .with_threads(1);
    let mut out = Vec::new();
    for (gname, g) in fixture_graphs() {
        out.push((
            format!("naive/{gname}"),
            naive::naive_simrank_with_report(&g, &opts).1.adds,
        ));
        out.push((
            format!("psum/{gname}"),
            psum::psum_simrank_with_report(&g, &opts).1.adds,
        ));
        out.push((
            format!("oip/{gname}"),
            oip::oip_simrank_with_report(&g, &opts).1.adds,
        ));
        out.push((
            format!("oip_dsr/{gname}"),
            dsr::oip_dsr_simrank_with_report(&g, &opts).1.adds,
        ));
        out.push((
            format!("prank/{gname}"),
            prank_with_report(
                &g,
                &PRankOptions {
                    base: opts,
                    lambda: 0.5,
                },
            )
            .1
            .adds,
        ));
        out.push((
            format!("montecarlo/{gname}"),
            Fingerprints::sample_with_report(&g, 8, 32, 1, NonZeroUsize::MIN)
                .1
                .adds,
        ));
        out.push((
            format!("index/{gname}"),
            simrank::algo::index::SimRankIndex::build_with_report(&g, &opts)
                .1
                .adds,
        ));
        // Dynamic maintenance: warm resweep and index repair after the
        // fixed edit script. The warm paths stop on a convergence check,
        // so pinning their adds also pins the iteration/round counts.
        let script = dynamic_script(&g);
        out.push((format!("dynamic_resweep/{gname}"), {
            let warm = naive::naive_simrank(&g, &opts);
            let mut mg = g.clone();
            mg.apply_batch(&script).expect("valid script");
            dynamic::resweep_with_report(&mg, &warm, &opts).1.adds
        }));
        out.push((format!("dynamic_repair/{gname}"), {
            let index = simrank::algo::index::SimRankIndex::build(&g, &opts);
            index
                .repair_with_report(&script, &opts)
                .expect("valid script")
                .1
                .adds
        }));
    }
    out
}

#[test]
fn op_counts_match_committed_baselines() {
    let measured = measured_cases();
    if std::env::var_os("SIMRANK_UPDATE_BASELINES").is_some() {
        let mut body = String::from(
            "# Per-algorithm Report::adds baselines on the fixture graphs (see\n\
             # tests/op_baselines.rs). Regenerate after intended cost-model\n\
             # changes with: SIMRANK_UPDATE_BASELINES=1 cargo test --test op_baselines\n",
        );
        for (name, adds) in &measured {
            body.push_str(&format!("{name} {adds}\n"));
        }
        std::fs::write(BASELINE_PATH, body).expect("write baselines/op_counts.txt");
        return; // freshly regenerated: trivially in sync
    }

    let committed = std::fs::read_to_string(BASELINE_PATH).expect(
        "baselines/op_counts.txt missing — generate it with \
         SIMRANK_UPDATE_BASELINES=1 cargo test --test op_baselines",
    );
    let mut baseline: BTreeMap<&str, u64> = BTreeMap::new();
    for line in committed.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (name, adds) = line
            .split_once(' ')
            .expect("baseline lines are `<case> <adds>`");
        baseline.insert(name, adds.trim().parse().expect("baseline adds count"));
    }

    for (name, adds) in &measured {
        let want = *baseline.get(name.as_str()).unwrap_or_else(|| {
            panic!("no committed baseline for `{name}` — regenerate op_counts.txt")
        });
        assert!(
            *adds <= want,
            "{name}: op count regressed above baseline ({adds} > {want}) — \
             was redundant (e.g. lower-triangle) arithmetic reintroduced?"
        );
        assert!(
            *adds >= want,
            "{name}: op count fell below baseline ({adds} < {want}); if this is an \
             intended optimization, regenerate baselines/op_counts.txt"
        );
    }
    for name in baseline.keys() {
        assert!(
            measured.iter().any(|(m, _)| m == name),
            "stale baseline entry `{name}` no longer measured"
        );
    }
}
