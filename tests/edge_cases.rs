//! Edge-case integration tests with analytically known SimRank values.
//!
//! Graph families where the SimRank fixed point has a closed form make
//! excellent end-to-end oracles: any algebra or indexing slip in the
//! partial-sums machinery shows up as a wrong constant, not a vague drift.

use simrank::algo::{dsr, naive, oip, psum, SimRankOptions};
use simrank::graph::DiGraph;
use simrank::prelude::*;

/// Worker count for the adversarial sweeps: honors the CI determinism
/// matrix (`SIMRANK_TEST_THREADS`) via [`SimRankOptions::default`]; results
/// are identical for every value by the executor's determinism contract.
fn test_opts(k: u32) -> SimRankOptions {
    SimRankOptions::default().with_iterations(k)
}

fn converged(g: &DiGraph, c: f64) -> simrank::algo::SimMatrix {
    oip::oip_simrank(
        g,
        &SimRankOptions::default()
            .with_damping(c)
            .with_iterations(120),
    )
}

/// Star `0 → {1..k}`: every pair of leaves meets at the hub in one step,
/// so `s(leaf_i, leaf_j) = C` exactly, for every k.
#[test]
fn star_graph_leaves_score_c() {
    for k in [2usize, 5, 12] {
        let edges: Vec<(u32, u32)> = (1..=k as u32).map(|v| (0, v)).collect();
        let g = DiGraph::from_edges(k + 1, edges).unwrap();
        let s = converged(&g, 0.7);
        for i in 1..=k {
            for j in (i + 1)..=k {
                assert!((s.get(i, j) - 0.7).abs() < 1e-10, "k={k} pair ({i},{j})");
            }
            assert_eq!(s.get(0, i), 0.0, "hub has no in-neighbors");
        }
    }
}

/// Directed path `0 → 1 → 2 → …`: backward walks are deterministic and
/// never meet from distinct starts, so all off-diagonal scores are zero.
#[test]
fn path_graph_all_zero() {
    let n = 8;
    let edges: Vec<(u32, u32)> = (0..n as u32 - 1).map(|v| (v, v + 1)).collect();
    let g = DiGraph::from_edges(n, edges).unwrap();
    let s = converged(&g, 0.8);
    for a in 0..n {
        for b in 0..n {
            let want = if a == b { 1.0 } else { 0.0 };
            assert!((s.get(a, b) - want).abs() < 1e-12, "({a},{b})");
        }
    }
}

/// Directed cycle: same argument as the path — rotation distance is
/// invariant under the backward step, so distinct vertices never meet.
#[test]
fn cycle_graph_all_zero() {
    let n = 6;
    let edges: Vec<(u32, u32)> = (0..n as u32).map(|v| (v, (v + 1) % n as u32)).collect();
    let g = DiGraph::from_edges(n, edges).unwrap();
    let s = converged(&g, 0.6);
    for a in 0..n {
        for b in 0..n {
            if a != b {
                assert!(s.get(a, b).abs() < 1e-12, "({a},{b})");
            }
        }
    }
}

/// Complete digraph `K_n` (all ordered pairs, no loops): by symmetry the
/// fixed point is a single constant
/// `x = C(n−2) / ((n−1)² − C((n−1)² − (n−2)))`.
#[test]
fn complete_digraph_closed_form() {
    for n in [3usize, 4, 6] {
        let mut edges = Vec::new();
        for a in 0..n as u32 {
            for b in 0..n as u32 {
                if a != b {
                    edges.push((a, b));
                }
            }
        }
        let g = DiGraph::from_edges(n, edges).unwrap();
        let c = 0.6;
        let s = converged(&g, c);
        let m = (n - 1) as f64;
        let want = c * (n as f64 - 2.0) / (m * m - c * (m * m - (n as f64 - 2.0)));
        for a in 0..n {
            for b in 0..n {
                if a != b {
                    assert!(
                        (s.get(a, b) - want).abs() < 1e-9,
                        "n={n} ({a},{b}): {} vs {want}",
                        s.get(a, b)
                    );
                }
            }
        }
    }
}

/// Two vertices citing each other: `s` must converge to
/// `x = C·s(j,i)... ` — i.e. `x = C·1·1/(1·1)·s(b,a)`? No: I(a)={b},
/// I(b)={a}, so `s(a,b) = C·s(b,a) = C·s(a,b)` ⇒ `s(a,b) = 0`.
#[test]
fn mutual_citation_is_zero() {
    let g = DiGraph::from_edges(2, [(0, 1), (1, 0)]).unwrap();
    let s = converged(&g, 0.9);
    assert!(s.get(0, 1).abs() < 1e-12);
}

/// Self-loops: a vertex citing itself is its own in-neighbor; the
/// definition still applies and all variants must agree.
#[test]
fn self_loops_consistent_across_variants() {
    let g = DiGraph::from_edges(3, [(0, 0), (0, 1), (0, 2), (1, 2)]).unwrap();
    let opts = SimRankOptions::default().with_iterations(8);
    let a = naive::naive_simrank(&g, &opts);
    let b = psum::psum_simrank(&g, &opts);
    let c = oip::oip_simrank(&g, &opts);
    assert!(a.max_abs_diff(&b) < 1e-12);
    assert!(a.max_abs_diff(&c) < 1e-12);
}

/// Single vertex and empty graph degenerate cleanly everywhere.
#[test]
fn degenerate_graphs() {
    let single = DiGraph::from_edges(1, []).unwrap();
    let opts = SimRankOptions::default().with_iterations(4);
    assert_eq!(oip::oip_simrank(&single, &opts).get(0, 0), 1.0);
    assert_eq!(dsr::oip_dsr_simrank(&single, &opts).order(), 1);
    let empty = DiGraph::from_edges(0, []).unwrap();
    assert_eq!(oip::oip_simrank(&empty, &opts).order(), 0);
    assert_eq!(psum::psum_simrank(&empty, &opts).order(), 0);
}

/// Graphs that historically break symmetry or indexing assumptions: a
/// vertex that cites itself is its own in-neighbor, dangling sinks have no
/// out-edges, sources have no in-edges, and isolated vertices have neither.
fn adversarial_graphs() -> Vec<(&'static str, DiGraph)> {
    vec![
        (
            "self-loops",
            DiGraph::from_edges(5, [(0, 0), (0, 1), (0, 2), (1, 2), (2, 2), (3, 0), (3, 3)])
                .unwrap(),
        ),
        (
            // 4 is a dangling sink, 5 is fully isolated.
            "dangling+isolated",
            DiGraph::from_edges(6, [(0, 1), (0, 2), (1, 4), (2, 4), (3, 1)]).unwrap(),
        ),
        (
            // Self-loop on a hub plus an isolated pair and a dangling chain.
            "mixed",
            DiGraph::from_edges(7, [(0, 0), (1, 0), (0, 2), (1, 2), (2, 3), (3, 4)]).unwrap(),
        ),
    ]
}

/// All seven prelude entry points run on every adversarial graph; the three
/// exact conventional algorithms (naive / psum / oip) must agree within
/// 1e-8, everything else must respect the SimRank axioms (symmetry is
/// structural in `SimMatrix`; ranges and diagonals are checked explicitly).
#[test]
fn all_prelude_entry_points_agree_on_adversarial_graphs() {
    for (name, g) in adversarial_graphs() {
        let n = g.node_count();
        let opts = test_opts(10);
        // 1–3: the conventional trio is an exact cross-oracle.
        let by_naive = naive_simrank(&g, &opts);
        let by_psum = psum_simrank(&g, &opts);
        let by_oip = oip_simrank(&g, &opts);
        assert!(
            by_naive.max_abs_diff(&by_psum) < 1e-8,
            "{name}: psum vs naive {}",
            by_naive.max_abs_diff(&by_psum)
        );
        assert!(
            by_naive.max_abs_diff(&by_oip) < 1e-8,
            "{name}: oip vs naive {}",
            by_naive.max_abs_diff(&by_oip)
        );
        for a in 0..n {
            assert_eq!(by_oip.get(a, a), 1.0, "{name}: diagonal pinned");
            for b in 0..n {
                let v = by_oip.get(a, b);
                assert!((0.0..=1.0).contains(&v), "{name}: s({a},{b}) = {v}");
            }
        }
        // 4: differential SimRank — exponential model, bounded and with
        // e^{-C} ≤ diagonal ≤ 1.
        let by_dsr = oip_dsr_simrank(&g, &opts);
        let floor = (-opts.damping).exp() - 1e-12;
        for a in 0..n {
            let d = by_dsr.get(a, a);
            assert!(
                d >= floor && d <= 1.0 + 1e-12,
                "{name}: dsr diagonal {d} outside [e^-C, 1]"
            );
            for b in 0..n {
                let v = by_dsr.get(a, b);
                assert!(
                    (-1e-12..=1.0 + 1e-12).contains(&v),
                    "{name}: dsr({a},{b}) = {v}"
                );
            }
        }
        // 5: mtx-SR (matrix-form semantics, diagonal not pinned) — bounded
        // and zero wherever structure forbids similarity.
        let by_mtx = mtx_simrank(&g, &opts, None);
        for a in 0..n {
            for b in 0..n {
                let v = by_mtx.get(a, b);
                assert!(
                    (-1e-8..=1.0 + 1e-8).contains(&v),
                    "{name}: mtx({a},{b}) = {v}"
                );
            }
        }
        // 6: P-Rank with λ = 1 degenerates to SimRank exactly, self-loops
        // and all.
        let by_prank = prank(
            &g,
            &PRankOptions {
                base: opts,
                lambda: 1.0,
            },
        );
        assert!(
            by_prank.max_abs_diff(&by_oip) < 1e-10,
            "{name}: prank(λ=1) vs oip {}",
            by_prank.max_abs_diff(&by_oip)
        );
        // 7: Monte Carlo estimates stay in [0, 1] and vanish where the
        // exact score is structurally zero (isolated / source vertices).
        for a in 0..n as u32 {
            for b in 0..n as u32 {
                let est = mc_simrank_pair(&g, a, b, &opts, 8, 200, 42);
                assert!((0.0..=1.0).contains(&est), "{name}: mc({a},{b}) = {est}");
                if g.in_degree(a) == 0 && a != b {
                    assert_eq!(est, 0.0, "{name}: mc must be 0 for in-degree-0 {a}");
                }
            }
        }
    }
}

/// The executor's determinism contract holds on the adversarial graphs
/// end-to-end: `threads = 4` reproduces `threads = 1` bit-for-bit through
/// the public facade.
#[test]
fn adversarial_graphs_are_thread_count_invariant() {
    for (name, g) in adversarial_graphs() {
        let single = test_opts(12).with_threads(1);
        let sharded = single.with_threads(4);
        assert_eq!(
            naive_simrank(&g, &single).max_abs_diff(&naive_simrank(&g, &sharded)),
            0.0,
            "{name}: naive"
        );
        assert_eq!(
            psum_simrank(&g, &single).max_abs_diff(&psum_simrank(&g, &sharded)),
            0.0,
            "{name}: psum"
        );
        assert_eq!(
            oip_simrank(&g, &single).max_abs_diff(&oip_simrank(&g, &sharded)),
            0.0,
            "{name}: oip"
        );
        assert_eq!(
            dsr::oip_dsr_simrank(&g, &single).max_abs_diff(&dsr::oip_dsr_simrank(&g, &sharded)),
            0.0,
            "{name}: dsr"
        );
        // mtx routes its SVD, matrix products, and triangular
        // densification through the same executor: the self-loop /
        // dangling / isolated structures must not perturb the tournament
        // schedule's determinism.
        assert_eq!(
            mtx_simrank(&g, &single, None).max_abs_diff(&mtx_simrank(&g, &sharded, None)),
            0.0,
            "{name}: mtx"
        );
    }
}

/// Duplicate in-neighbor sets (the zero-cost sharing case): thousands of
/// vertices citing the same two hubs must all be pairwise `≈ C`-similar,
/// and OIP must process them with almost no additional work per vertex.
#[test]
fn duplicate_in_sets_share_for_free() {
    let k = 60u32;
    let mut edges = vec![(0u32, 1u32), (1, 0)];
    for v in 2..k {
        edges.push((0, v));
        edges.push((1, v));
    }
    let g = DiGraph::from_edges(k as usize, edges).unwrap();
    let opts = SimRankOptions::default()
        .with_damping(0.6)
        .with_iterations(30);
    let (s, report) = oip::oip_simrank_with_report(&g, &opts);
    // All duplicate-set vertices are equally similar to each other.
    let first = s.get(2, 3);
    for a in 2..k as usize {
        for b in (a + 1)..k as usize {
            assert!((s.get(a, b) - first).abs() < 1e-12);
        }
    }
    // The tree weight collapses: after the first {0,1}-set vertex, each
    // duplicate costs 0 transitions (plus the two hub sets themselves).
    assert!(
        report.tree_weight <= 4,
        "duplicate sets should make the plan nearly free, weight {}",
        report.tree_weight
    );
}
