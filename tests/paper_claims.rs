//! End-to-end checks of the paper's headline claims through the facade.

use simrank::algo::{convergence, dsr, oip, psum, SimRankOptions};
use simrank::datasets;
use simrank::prelude::*;

/// §I / Fig. 1: partial-sums sharing eliminates redundant additions on a
/// graph with overlapping in-neighbor sets.
#[test]
fn claim_partial_sums_sharing_saves_work() {
    let g = datasets::berkstan_like(300, datasets::DEFAULT_SEED).graph;
    let opts = SimRankOptions::default().with_iterations(5);
    let (s_oip, r_oip) = oip::oip_simrank_with_report(&g, &opts);
    let (s_psum, r_psum) = psum::psum_simrank_with_report(&g, &opts);
    assert!(
        s_oip.max_abs_diff(&s_psum) < 1e-10,
        "same model, same scores"
    );
    let ratio = r_oip.share_ratio_vs(&r_psum);
    assert!(ratio > 0.4, "web-graph share ratio too low: {ratio}");
    // Proposition 5: d' ≤ d.
    assert!(r_oip.d_eff <= g.avg_in_degree() * 2.0);
}

/// §IV: the differential model reaches tight accuracies in single-digit
/// iterations where the conventional model needs dozens.
#[test]
fn claim_exponential_convergence() {
    let c = 0.8;
    let eps = 1e-5;
    assert!(convergence::geometric_iterations(c, eps) >= 40);
    assert!(convergence::differential_iterations(c, eps) <= 8);
    // And the a-priori estimates agree with the exact bound count to ±2.
    let exact = convergence::differential_iterations(c, eps) as i64;
    let lamw = convergence::lambert_w_estimate(c, eps).expect("in domain") as i64;
    assert!((lamw - exact).abs() <= 2);
}

/// §V Exp-1: on a fixed accuracy target the differential algorithm does
/// strictly less work than conventional OIP, which does less than psum.
#[test]
fn claim_work_ordering_at_fixed_accuracy() {
    let g = datasets::dblp_like(datasets::DblpSnapshot::D02, 48, 5).graph;
    let opts = SimRankOptions::default()
        .with_damping(0.6)
        .with_epsilon(1e-3);
    let (_, r_dsr) = dsr::oip_dsr_simrank_with_report(&g, &opts);
    let (_, r_oip) = oip::oip_simrank_with_report(&g, &opts);
    let (_, r_psum) = psum::psum_simrank_with_report(&g, &opts);
    assert!(
        r_dsr.adds < r_oip.adds,
        "DSR {} vs OIP {}",
        r_dsr.adds,
        r_oip.adds
    );
    assert!(
        r_oip.adds < r_psum.adds,
        "OIP {} vs psum {}",
        r_oip.adds,
        r_psum.adds
    );
}

/// §V Exp-4: the differential model fairly preserves the conventional
/// relative order (NDCG-style check against converged scores).
#[test]
fn claim_relative_order_preserved() {
    let g = datasets::dblp_like(datasets::DblpSnapshot::D02, 48, 9).graph;
    let opts = SimRankOptions::default()
        .with_damping(0.6)
        .with_epsilon(1e-3);
    let truth = oip::oip_simrank(&g, &opts.with_iterations(60));
    let fast = dsr::oip_dsr_simrank(&g, &opts);
    let query = g
        .nodes()
        .max_by_key(|&v| g.in_degree(v))
        .expect("non-empty");
    let truth_ids = simrank::algo::topk::top_k_ids(&truth, query, 10);
    let fast_ids = simrank::algo::topk::top_k_ids(&fast, query, 10);
    let overlap = top_k_overlap(&truth_ids, &fast_ids);
    assert!(overlap >= 0.8, "top-10 overlap {overlap}");
}

/// The facade's prelude is sufficient for the quickstart use case.
#[test]
fn prelude_quickstart_compiles_and_runs() {
    let g = simrank::graph::fixtures::paper_fig1a();
    let opts = SimRankOptions::default()
        .with_damping(0.6)
        .with_iterations(8);
    let conventional = oip_simrank(&g, &opts);
    let differential = oip_dsr_simrank(&g, &opts);
    let naive = naive_simrank(&g, &opts);
    let memoized = psum_simrank(&g, &opts);
    assert!(conventional.max_abs_diff(&naive) < 1e-10);
    assert!(memoized.max_abs_diff(&naive) < 1e-10);
    // The two models are distinct but correlated.
    assert!(conventional.max_abs_diff(&differential) > 1e-3);
    let tau = kendall_tau(
        &(0..9).map(|b| conventional.get(0, b)).collect::<Vec<_>>(),
        &(0..9).map(|b| differential.get(0, b)).collect::<Vec<_>>(),
    );
    assert!(tau > 0.6, "model correlation too weak: {tau}");
}

/// Graph serialization round-trips through the facade.
#[test]
fn io_round_trip_via_facade() {
    let g = datasets::patent_like(200, 3).graph;
    let bytes = simrank::graph::io::encode(&g);
    assert_eq!(simrank::graph::io::decode(&bytes).expect("decodes"), g);
}
